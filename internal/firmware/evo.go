package firmware

import (
	"ssdtp/internal/ssd"
)

// Planted ground truth — the facts §3.2 reports for the Samsung 840 EVO.
// The reverse-engineering toolkit must recover these via JTAG alone; tests
// compare its findings against this block.
const (
	// IDCode is the ARM DAP identification code.
	IDCode uint32 = 0x4BA0_0477

	// Cores is the tri-core Cortex-R4 configuration: core 0 services SATA,
	// cores 1 and 2 each manage four of the eight channels, splitting
	// requests by the 4 KB LBA's least-significant bit.
	Cores    = 3
	Channels = 8

	// LogicalAddrs is the 65M (mebi) logical 4 KB addresses; entries
	// require 26 bits, so the map could theoretically fit in ~221 MB, but
	// the firmware stores 4-byte words: 260 MB of arrays plus a 4 MB
	// hashed pSLC index = 264 MB of the 512 MB DRAM.
	LogicalAddrs = 65 << 20
	EntryBits    = 26
	WordBytes    = 4
	MapArrays    = 8

	// ChunkSpanBytes is the logical span one on-demand-loaded map chunk
	// covers: 117.5 MB.
	ChunkSpanBytes = 117*1024*1024 + 512*1024

	// SectorSize is the mapping granularity.
	SectorSize = 4096
)

// Memory map (32-bit physical addresses).
const (
	ROMBase  uint32 = 0x0000_0000
	ROMSize  uint32 = 0x0004_0000
	SRAMBase uint32 = 0x1000_0000
	SRAMSize uint32 = 0x0004_0000
	DRAMBase uint32 = 0x2000_0000
	DRAMSize uint32 = 0x2000_0000 // 512 MB

	// ArrayStride is one translation array: LogicalAddrs/8 entries x 4 B.
	ArrayStride uint32 = (LogicalAddrs / MapArrays) * WordBytes
	ArraysBase  uint32 = DRAMBase

	PSLCIndexBase uint32 = ArraysBase + MapArrays*ArrayStride
	PSLCIndexSize uint32 = 4 << 20

	ChunkBitmapBase uint32 = PSLCIndexBase + PSLCIndexSize

	MMIOBase uint32 = 0x4000_0000
	// MMIO registers (word offsets from MMIOBase).
	RegFlashPower   uint32 = 0x00
	RegChunksLoaded uint32 = 0x04
	RegChunkCount   uint32 = 0x08
	RegCoreCount    uint32 = 0x0C
	RegChannelCount uint32 = 0x10
)

// Core program-counter symbols. Idle cores sit in a WFI loop in ROM; active
// cores execute in their handler ranges.
const (
	PCIdleBase   uint32 = 0x0000_0100 // + core*0x20
	PCSATABase   uint32 = 0x0000_9000 // core 0 host-interface handler
	PCChanBase1  uint32 = 0x0001_0000 // core 1: channels 0-3, 0x400 apart
	PCChanBase2  uint32 = 0x0001_4000 // core 2: channels 4-7, 0x400 apart
	PCHandlerLen uint32 = 0x400
)

// ChunkCount is the number of on-demand map chunks.
const ChunkCount = (int64(LogicalAddrs)*SectorSize + ChunkSpanBytes - 1) / ChunkSpanBytes

// invalidEntry marks an unmapped logical address in a translation word.
const invalidEntry uint32 = (1 << EntryBits) - 1

// validFlag is set on mapped translation words (bits 26-29 carry flags).
const validFlag uint32 = 1 << EntryBits

// EVO840 is the simulated controller. It optionally fronts a live, scaled
// ssd.Device (model EVO840): translation entries for logical addresses the
// scaled device actually has come from its FTL; higher addresses are
// synthesized deterministically so the full-scale structure sizes match the
// real drive. It implements jtag.Target.
type EVO840 struct {
	dev *ssd.Device

	image   []byte
	regions []Region

	chunkLoaded []bool
	loadedCount uint32

	// Debug state.
	halted  [Cores]bool
	haltPC  [Cores]uint32
	selCore int
	addrReg uint32
	sram    map[uint32]uint32

	// Activity accounting driven by NoteHostAccess.
	parityOps   [2]int64 // host ops by LBA LSB since last PC sample
	lastChan    [Cores]int
	hostOps     int64
	busOpsTotal int64
	pcJitter    uint32

	// pslcCache materializes the hashed pSLC index view; invalidated on
	// host traffic.
	pslcCache map[uint32][2]uint32
}

// New builds the controller, optionally fronting dev (which should be the
// ssd.EVO840 model; nil gives a fully synthetic drive).
func New(dev *ssd.Device) *EVO840 {
	regions := []Region{
		{Base: ROMBase, Size: ROMSize, Kind: RegionROM},
		{Base: SRAMBase, Size: SRAMSize, Kind: RegionSRAM},
		{Base: DRAMBase, Size: DRAMSize, Kind: RegionDRAM},
	}
	for i := uint32(0); i < MapArrays; i++ {
		regions = append(regions, Region{
			Base: ArraysBase + i*ArrayStride, Size: ArrayStride, Kind: RegionMapArray,
		})
	}
	regions = append(regions,
		Region{Base: PSLCIndexBase, Size: PSLCIndexSize, Kind: RegionPSLCIndex},
		Region{Base: ChunkBitmapBase, Size: uint32(ChunkCount+7) / 8, Kind: RegionChunkBitmap},
		Region{Base: MMIOBase, Size: 0x1000, Kind: RegionMMIO},
	)
	return &EVO840{
		dev:         dev,
		image:       BuildImage("EXT0BB6Q", regions),
		regions:     regions,
		chunkLoaded: make([]bool, ChunkCount),
		sram:        make(map[uint32]uint32),
	}
}

// UpdateFile returns the obfuscated firmware image, as a vendor update tool
// would download it.
func (f *EVO840) UpdateFile() []byte { return Obfuscate(f.image) }

// Device returns the backing scaled device (may be nil).
func (f *EVO840) Device() *ssd.Device { return f.dev }

// NoteHostAccess informs the firmware of host I/O to a logical sector: the
// covering map chunk loads on demand and core activity accounting updates.
// The HostWrite/HostRead helpers call this; experiments driving the backing
// device directly must, too.
func (f *EVO840) NoteHostAccess(lsn int64) {
	chunk := lsn * SectorSize / ChunkSpanBytes
	if chunk >= 0 && chunk < int64(len(f.chunkLoaded)) && !f.chunkLoaded[chunk] {
		f.chunkLoaded[chunk] = true
		f.loadedCount++
	}
	par := int(lsn & 1)
	f.parityOps[par]++
	f.hostOps++
	f.busOpsTotal++
	core := 1 + par
	f.lastChan[core] = par*4 + int((lsn>>1)&3)
	f.pslcCache = nil
}

// HostWrite drives a write through the backing device and the firmware's
// accounting.
func (f *EVO840) HostWrite(lsn int64, sectors int, done func()) error {
	for s := int64(0); s < int64(sectors); s++ {
		f.NoteHostAccess(lsn + s)
	}
	if f.dev == nil {
		if done != nil {
			done()
		}
		return nil
	}
	return f.dev.WriteAsync(lsn*SectorSize, nil, int64(sectors)*SectorSize, done)
}

// HostRead drives a read through the backing device and the firmware's
// accounting.
func (f *EVO840) HostRead(lsn int64, sectors int, done func()) error {
	for s := int64(0); s < int64(sectors); s++ {
		f.NoteHostAccess(lsn + s)
	}
	if f.dev == nil {
		if done != nil {
			done()
		}
		return nil
	}
	return f.dev.ReadAsync(lsn*SectorSize, nil, int64(sectors)*SectorSize, done)
}

// entryFor synthesizes (or fetches) the translation word for a logical
// address.
func (f *EVO840) entryFor(lsn int64) uint32 {
	if f.dev != nil && lsn < f.dev.FTL().LogicalSectors() {
		psn := f.dev.FTL().MapEntry(lsn)
		if psn < 0 {
			return invalidEntry
		}
		return uint32(psn)&(validFlag-1) | validFlag
	}
	// Synthetic high addresses: deterministic hash; ~1/5 unmapped.
	h := uint64(lsn) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	if h%5 == 0 {
		return invalidEntry
	}
	return uint32(h)&(validFlag-1) | validFlag
}

// pslcBuckets is the hashed pSLC index size in 8-byte buckets.
const pslcBuckets = PSLCIndexSize / 8

// pslcBucketFor returns the bucket index for a logical address.
func pslcBucketFor(lsn int64) uint32 {
	h := uint64(lsn)*0xFF51AFD7ED558CCD + 0x2545F491
	return uint32(h>>16) % pslcBuckets
}
