package firmware

// ExtractStrings pulls printable ASCII runs of at least minLen bytes from a
// firmware image — the first thing anyone runs on a de-obfuscated blob
// (`strings firmware.bin`), and how the paper's authors oriented themselves
// in the 840 EVO image before disassembling.
func ExtractStrings(img []byte, minLen int) []string {
	if minLen < 2 {
		minLen = 2
	}
	var out []string
	start := -1
	for i, b := range img {
		printable := b >= 0x20 && b < 0x7F
		if printable && start < 0 {
			start = i
		}
		if !printable && start >= 0 {
			if i-start >= minLen {
				out = append(out, string(img[start:i]))
			}
			start = -1
		}
	}
	if start >= 0 && len(img)-start >= minLen {
		out = append(out, string(img[start:]))
	}
	return out
}
