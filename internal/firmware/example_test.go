package firmware_test

import (
	"fmt"

	"ssdtp/internal/firmware"
)

func ExampleDeobfuscate() {
	fw := firmware.New(nil)
	img, err := firmware.Deobfuscate(fw.UpdateFile())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(firmware.Version(img))
	regions, _ := firmware.ParseRegions(img)
	fmt.Println(len(regions), "regions in the embedded memory map")
	// Output:
	// EXT0BB6Q
	// 14 regions in the embedded memory map
}
