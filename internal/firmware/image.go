// Package firmware simulates the Samsung 840 EVO's controller as seen from
// its debug port: a tri-core SoC with a 512 MB DRAM holding the FTL's
// translation structures, an obfuscated firmware image (retrievable as an
// "update file" and de-obfuscated offline, as the paper did with an existing
// tool), MMIO registers, and per-core program counters that reflect live
// device activity. The package plants, as ground truth, exactly the facts
// §3.2 reports — the reverse-engineering toolkit in internal/core must
// recover them through the JTAG interface alone.
package firmware

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Image layout constants.
const (
	imageMagic  = "SSDFW840"
	mmapMagic   = "MMAP"
	imageKeyOff = 8 // 4-byte keystream seed stored in the clear
)

// Region kinds in the firmware's embedded memory-map table.
const (
	RegionROM = iota
	RegionSRAM
	RegionDRAM
	RegionMapArray
	RegionPSLCIndex
	RegionChunkBitmap
	RegionMMIO
)

// Region is one entry of the memory-map table embedded in the firmware
// image (the "code memory map" the paper combined with decompilation).
type Region struct {
	Base uint32
	Size uint32
	Kind uint32
}

// ErrBadImage reports a corrupt or non-firmware payload.
var ErrBadImage = errors.New("firmware: bad image")

// BuildImage assembles a plaintext firmware image: header, version string,
// memory-map table, and filler "code". The checksum trails the payload.
func BuildImage(version string, regions []Region) []byte {
	var b bytes.Buffer
	b.WriteString(imageMagic)
	b.Write([]byte{0x13, 0x57, 0x9B, 0xDF}) // keystream seed
	var vs [16]byte
	copy(vs[:], version)
	b.Write(vs[:])
	b.WriteString(mmapMagic)
	_ = binary.Write(&b, binary.LittleEndian, uint32(len(regions)))
	for _, r := range regions {
		_ = binary.Write(&b, binary.LittleEndian, r)
	}
	// Filler "code": deterministic pseudo-instructions.
	code := make([]byte, 4096)
	state := uint32(0xB5E3_7C19)
	for i := 0; i < len(code); i += 4 {
		state = state*1664525 + 1013904223
		binary.LittleEndian.PutUint32(code[i:], state)
	}
	b.Write(code)
	sum := crc32.ChecksumIEEE(b.Bytes())
	_ = binary.Write(&b, binary.LittleEndian, sum)
	return b.Bytes()
}

// keystream generates the XOR stream used by the vendor's update-file
// obfuscation (a 32-bit LFSR — deliberately weak, as real-world schemes
// that have been reversed tend to be).
func keystream(seed uint32, n int) []byte {
	out := make([]byte, n)
	s := seed
	for i := range out {
		// Galois LFSR, taps 32,30,26,25.
		for b := 0; b < 8; b++ {
			lsb := s & 1
			s >>= 1
			if lsb != 0 {
				s ^= 0xA300_0000
			}
		}
		out[i] = byte(s)
	}
	return out
}

// Obfuscate converts a plaintext image into the form shipped in vendor
// update files: everything after the clear header is XORed with the
// keystream derived from the embedded seed.
func Obfuscate(img []byte) []byte {
	if len(img) < imageKeyOff+4 {
		return append([]byte(nil), img...)
	}
	out := append([]byte(nil), img...)
	seed := binary.LittleEndian.Uint32(out[imageKeyOff:])
	ks := keystream(seed, len(out)-imageKeyOff-4)
	for i, k := range ks {
		out[imageKeyOff+4+i] ^= k
	}
	return out
}

// Deobfuscate inverts Obfuscate and validates the checksum — the simulated
// equivalent of the drive_firmware de-obfuscation utility the paper used.
func Deobfuscate(obf []byte) ([]byte, error) {
	if len(obf) < imageKeyOff+4 || string(obf[:len(imageMagic)]) != imageMagic {
		return nil, fmt.Errorf("%w: missing magic", ErrBadImage)
	}
	img := Obfuscate(obf) // XOR is an involution
	if len(img) < 8 {
		return nil, fmt.Errorf("%w: truncated", ErrBadImage)
	}
	body, tail := img[:len(img)-4], img[len(img)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadImage)
	}
	return img, nil
}

// ParseRegions extracts the embedded memory-map table from a plaintext
// image.
func ParseRegions(img []byte) ([]Region, error) {
	i := bytes.Index(img, []byte(mmapMagic))
	if i < 0 {
		return nil, fmt.Errorf("%w: no memory-map table", ErrBadImage)
	}
	r := bytes.NewReader(img[i+len(mmapMagic):])
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	if count > 64 {
		return nil, fmt.Errorf("%w: absurd region count %d", ErrBadImage, count)
	}
	regions := make([]Region, count)
	if err := binary.Read(r, binary.LittleEndian, &regions); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	return regions, nil
}

// Version extracts the version string from a plaintext image.
func Version(img []byte) string {
	if len(img) < imageKeyOff+4+16 {
		return ""
	}
	v := img[imageKeyOff+4 : imageKeyOff+4+16]
	if i := bytes.IndexByte(v, 0); i >= 0 {
		v = v[:i]
	}
	return string(v)
}
