package firmware

import "testing"

// FuzzDeobfuscate hardens the update-file path: arbitrary blobs must be
// rejected cleanly (no panic), and a valid image must round-trip.
func FuzzDeobfuscate(f *testing.F) {
	f.Add([]byte("SSDFW840garbage"))
	f.Add(Obfuscate(BuildImage("FUZZ", nil)))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, blob []byte) {
		img, err := Deobfuscate(blob)
		if err != nil {
			return
		}
		// Anything that passes the checksum must parse without panicking.
		_, _ = ParseRegions(img)
		_ = Version(img)
		_ = ExtractStrings(img, 4)
	})
}
