package fleet

import (
	"fmt"
	"sort"
)

// Placement decides which drives back a tenant's volume. Implementations are
// pure functions of their construction parameters — the returned groups must
// not depend on call order or any mutable state, so a fleet's drive→tenant
// map is a deterministic function of (policy, fleet size, seed) and every run
// reproduces it exactly.
type Placement interface {
	// Name labels the policy in reports and cell labels.
	Name() string
	// Group returns the ordered drive indices backing the tenant's volume.
	// The order matters: extent e of the volume lands on Group(t)[e % len].
	Group(tenant int) []int
}

// stripeAll stripes every tenant across the whole fleet, rotated by tenant
// index so tenants' extent-0 hot spots do not pile onto drive 0. Every drive
// is shared by every tenant — the maximal blast-radius configuration.
type stripeAll struct {
	drives int
}

// StripeAll returns the static full-fleet striping policy over the given
// number of drives.
func StripeAll(drives int) Placement {
	if drives <= 0 {
		panic(fmt.Sprintf("fleet: StripeAll over %d drives", drives))
	}
	return &stripeAll{drives: drives}
}

func (p *stripeAll) Name() string { return "stripe" }

func (p *stripeAll) Group(tenant int) []int {
	g := make([]int, p.drives)
	for i := range g {
		g[i] = (tenant + i) % p.drives
	}
	return g
}

// consistentHash places each tenant on a fixed-size group of drives chosen by
// walking a consistent-hash ring of virtual nodes. Different tenants land on
// overlapping-but-distinct subsets, so some of a tenant's drives are shared
// and some are private — the contrast the GC blast-radius metric needs.
type consistentHash struct {
	drives    int
	groupSize int
	seed      int64
	ring      []ringEntry
}

type ringEntry struct {
	pos   uint64
	drive int
}

// vnodesPerDrive balances the ring: more virtual nodes spread each drive's
// arc more evenly at the cost of a longer (one-time, sorted) ring.
const vnodesPerDrive = 16

// ConsistentHash returns the ring-placement policy: each tenant's group is
// the first groupSize distinct drives clockwise from the tenant's hash.
func ConsistentHash(drives, groupSize int, seed int64) Placement {
	if drives <= 0 || groupSize <= 0 || groupSize > drives {
		panic(fmt.Sprintf("fleet: ConsistentHash(%d drives, group %d)", drives, groupSize))
	}
	p := &consistentHash{drives: drives, groupSize: groupSize, seed: seed}
	p.ring = make([]ringEntry, 0, drives*vnodesPerDrive)
	for d := 0; d < drives; d++ {
		for v := 0; v < vnodesPerDrive; v++ {
			h := splitmix64(uint64(seed) ^ uint64(d)<<20 ^ uint64(v))
			p.ring = append(p.ring, ringEntry{pos: h, drive: d})
		}
	}
	sort.Slice(p.ring, func(i, j int) bool {
		if p.ring[i].pos != p.ring[j].pos {
			return p.ring[i].pos < p.ring[j].pos
		}
		return p.ring[i].drive < p.ring[j].drive
	})
	return p
}

func (p *consistentHash) Name() string { return "hash" }

func (p *consistentHash) Group(tenant int) []int {
	start := splitmix64(uint64(p.seed)*0x9E3779B97F4A7C15 + uint64(tenant) + 1)
	i := sort.Search(len(p.ring), func(j int) bool { return p.ring[j].pos >= start })
	group := make([]int, 0, p.groupSize)
	seen := make(map[int]bool, p.groupSize)
	for n := 0; n < len(p.ring) && len(group) < p.groupSize; n++ {
		e := p.ring[(i+n)%len(p.ring)]
		if !seen[e.drive] {
			seen[e.drive] = true
			group = append(group, e.drive)
		}
	}
	return group
}

// splitmix64 is the mixing function of the SplitMix64 generator — the same
// construction internal/runner uses for cell seeds. It bijectively scrambles
// its input, so distinct (drive, vnode) pairs get well-spread ring positions.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
