// Package fleet simulates a host-side storage tier: hundreds to thousands of
// ssd.Device instances (heterogeneous models, ages and fill levels, cloned
// cheaply from preconditioned snapshots) behind a striping/placement layer,
// serving multiple tenants. It turns the paper's per-drive transparency
// argument into the fleet problem operators actually have: garbage collection
// on a drive one tenant fills blows the p99 of every other tenant striped
// over it. See DESIGN.md §10.
//
// # Co-simulation
//
// Restored drive clones carry their preconditioning clock and trailing GC
// events, and sim.Engine.Rebase forbids moving an engine with pending events —
// so every drive keeps its own engine, offset from fleet time by a fixed
// per-drive base (its clock at attach). The fleet owns one host engine, which
// tenant workloads (workload.RunMulti) drive as usual; a single "pump" event
// on the host engine is always armed at the earliest pending drive event's
// fleet time. When it fires, due drive events are stepped in (fleet time,
// drive index) order; when a volume submits I/O, the target drive's clock is
// first advanced to fleet-now. New drive events are always scheduled at or
// after the drive's current clock, so no drive event can become due before
// the armed pump — the interleaving is total, deterministic, and independent
// of host-side worker counts.
//
// # Parallel prefetch
//
// With SetParallel, the pump additionally opens conservative-lookahead
// windows (DESIGN.md §11): drives are shards of a sim.ShardGroup whose
// per-shard floor is ssd.Device.CompletionFloor, so the group horizon — also
// capped by the host engine's next event and the cell tracer's next timeline
// boundary — bounds when any drive can next call back into host state.
// Everything strictly before the horizon is drive-internal and fires
// concurrently across worker goroutines; the instants those batches fired at
// come back from AdvanceBefore, and the pump re-arms through them as "ghost"
// pumps so the host engine sees the exact event stream (count, times,
// sequence numbers, hook calls) the serial pump would have produced. Output
// therefore stays byte-identical at any worker count.
//
// # Attribution
//
// Each drive's latency-attribution profiler (obs.Profiler) gets a row sink,
// so every completed sub-request's exact phase decomposition is observed at
// completion — no per-request state is retained on the drives. The volume
// charges the row's gc_stall time to the issuing tenant, split by whether the
// drive is shared with other tenants; the per-tenant tail of those charges is
// the GC blast radius.
package fleet

import (
	"fmt"

	"ssdtp/internal/obs"
	"ssdtp/internal/sim"
	"ssdtp/internal/ssd"
	"ssdtp/internal/stats"
)

// drive is one device in the tier plus its co-simulation and placement state.
type drive struct {
	dev  *ssd.Device
	eng  *sim.Engine
	base sim.Time // drive-local clock minus fleet clock, fixed at attach

	tenants int   // volumes with at least one extent here
	cursor  int64 // next unallocated drive-local byte

	// lastRow/hasRow form the one-slot row hand-off from the drive profiler's
	// sink to the volume's sub-request completion: ReqAttr.End runs the sink
	// and then, synchronously, the completion callback, so the slot always
	// holds exactly the completing request's row when the callback reads it.
	lastRow obs.AttrRow
	hasRow  bool
}

// takeRow consumes the row hand-off slot.
func (d *drive) takeRow() (obs.AttrRow, bool) {
	if !d.hasRow {
		return obs.AttrRow{}, false
	}
	d.hasRow = false
	return d.lastRow, true
}

// Fleet is the drive tier. Construct with New, carve tenant volumes with
// AddVolume, then drive the host engine (workload generators do) — the fleet
// keeps every drive's simulation interleaved with the host clock.
type Fleet struct {
	eng    *sim.Engine
	drives []*drive
	stripe int64
	sector int
	pump   sim.Event
	vols   []*Volume
	tr     *obs.Tracer // cell tracer from BindObs; carries tenant-request spans

	// group shards the drive engines for conservative-lookahead prefetch;
	// parallel gates it (SetParallel). ghosts are the fleet times of batches
	// a window already fired, still owed one pump firing each so the host
	// engine's event stream matches the serial pump's exactly. prefetching
	// is the in-window assertion flag: a host-visible completion while it is
	// set means a drive violated its completion floor.
	group       *sim.ShardGroup
	parallel    bool
	ghosts      []sim.Time
	prefetching bool
	// prefetchedBatches counts event batches fired inside windows — coverage
	// telemetry for tests; never exported (it would differ from serial runs).
	prefetchedBatches int64
}

// New assembles a tier over devs on the host engine eng. Each device must be
// on its own engine (not eng) with no host I/O outstanding; stripeBytes is
// the placement extent size, a positive multiple of the common sector size.
func New(eng *sim.Engine, devs []*ssd.Device, stripeBytes int64) *Fleet {
	if len(devs) == 0 {
		panic("fleet: New with no drives")
	}
	f := &Fleet{eng: eng, stripe: stripeBytes, sector: devs[0].SectorSize()}
	if stripeBytes <= 0 || stripeBytes%int64(f.sector) != 0 {
		panic(fmt.Sprintf("fleet: stripe %d not a positive multiple of sector %d", stripeBytes, f.sector))
	}
	f.drives = make([]*drive, len(devs))
	f.group = sim.NewShardGroup(1)
	for i, dev := range devs {
		if dev.Engine() == eng {
			panic("fleet: drives must not share the host engine")
		}
		if dev.SectorSize() != f.sector {
			panic(fmt.Sprintf("fleet: drive %d sector %d != fleet sector %d", i, dev.SectorSize(), f.sector))
		}
		d := &drive{dev: dev, eng: dev.Engine(), base: dev.Engine().Now() - eng.Now()}
		if prof := dev.Tracer().Prof(); prof != nil {
			prof.SetRowSink(func(r obs.AttrRow) {
				d.lastRow = r
				d.hasRow = true
			})
		}
		dev.TrackCompletions()
		f.group.Attach(d.eng, d.base, func() (sim.Time, bool) {
			t, ok := d.dev.CompletionFloor()
			if !ok {
				return 0, false
			}
			return t - d.base, true
		})
		f.drives[i] = d
	}
	f.armPump()
	return f
}

// SetParallel turns conservative-lookahead prefetch on with the given worker
// count, or off again with workers <= 1 (the default). Output is byte-
// identical at every setting; parallelism only changes wall-clock time.
func (f *Fleet) SetParallel(workers int) {
	f.parallel = workers > 1
	if f.parallel {
		f.group.SetWorkers(workers)
	}
}

// Engine returns the host engine.
func (f *Fleet) Engine() *sim.Engine { return f.eng }

// Drives returns the tier size.
func (f *Fleet) Drives() int { return len(f.drives) }

// SharedDrives returns how many drives back more than one volume.
func (f *Fleet) SharedDrives() int {
	n := 0
	for _, d := range f.drives {
		if d.tenants > 1 {
			n++
		}
	}
	return n
}

// syncDrive advances a drive's local clock to fleet-now, firing any of its
// events due at or before it, so a submission lands on an up-to-date drive.
func (f *Fleet) syncDrive(d *drive) {
	d.eng.RunUntil(d.base + f.eng.Now())
}

// nextDriveTime returns the earliest pending drive event's fleet time.
func (f *Fleet) nextDriveTime() (sim.Time, bool) {
	var best sim.Time
	found := false
	for _, d := range f.drives {
		if t, ok := d.eng.NextEventTime(); ok {
			g := t - d.base
			if !found || g < best {
				best, found = g, true
			}
		}
	}
	return best, found
}

// armPump (re)schedules the pump at the earliest pending drive event — or,
// when a prefetch window left ghost instants to replay, at the next ghost
// (always earlier than every remaining drive event). The invariant — no
// drive event is due before the armed pump — holds because drives only gain
// events while being stepped or synced at fleet-now, so every new event's
// fleet time is >= now.
func (f *Fleet) armPump() {
	next, ok := f.nextDriveTime()
	if len(f.ghosts) > 0 {
		next, ok = f.ghosts[0], true
	}
	if f.pump.Pending() {
		if ok && f.pump.Time() == next {
			return
		}
		f.pump.Cancel()
	}
	if !ok {
		return
	}
	if now := f.eng.Now(); next < now {
		next = now // defensive; the invariant makes this unreachable
	}
	f.pump = f.eng.At(next, f.pumpFire)
}

// pumpFire steps every due drive event in (fleet time, drive index) order —
// sim.ShardGroup's total order over the drive shards — then, in parallel
// mode with no ghosts left to replay, opens the next prefetch window before
// re-arming. Completion callbacks fired here run tenant logic (latency
// recording, follow-on submissions) at the correct host-clock instant. At a
// ghost instant the due-event step is a no-op (the window already fired that
// batch); the firing itself keeps the host engine's event stream identical
// to the serial pump's.
func (f *Fleet) pumpFire() {
	now := f.eng.Now()
	if len(f.ghosts) > 0 && f.ghosts[0] == now {
		f.ghosts = f.ghosts[1:]
	}
	f.group.RunUntil(now)
	if f.parallel && len(f.ghosts) == 0 {
		f.prefetch()
	}
	f.armPump()
}

// prefetch opens one conservative-lookahead window: every drive event
// strictly before the horizon is internal to its drive, so the group fires
// them concurrently. The horizon is the minimum of the host engine's next
// event (no submission may land on a drive that has run ahead of it) and
// every busy drive's completion floor (no host-visible completion may fire
// inside the window), further capped by the cell tracer's next timeline
// boundary (a boundary row samples current drive state at the first host
// event past it, so no drive may run ahead of an unsampled boundary).
//
// With neither a host event pending nor a request outstanding anywhere, the
// window stays shut: the host run loop can only decide to stop at such a
// point (workload generators signal done when their last request drains),
// and events fired beyond its last instant would diverge from the serial
// run's final drive state. The timeline cap deliberately cannot open a
// window on its own — it only tightens one justified by the host queue or a
// floor.
func (f *Fleet) prefetch() {
	limit, bounded := f.eng.NextEventTime()
	h, ok := f.group.Horizon(limit, bounded)
	if !ok {
		return
	}
	if tb, tok := f.tr.NextTimelineBoundary(); tok && tb < h {
		h = tb
	}
	f.prefetching = true
	f.ghosts = f.group.AdvanceBefore(h, true)
	f.prefetching = false
	f.prefetchedBatches += int64(len(f.ghosts))
}

// volRow is one tenant request's blast-radius accounting: end-to-end latency
// plus the gc_stall time its sub-requests were charged, split by whether the
// drive is shared with other tenants.
type volRow struct {
	total    sim.Time
	gc       sim.Time
	gcShared sim.Time
}

// DefaultRowCap bounds retained per-request rows per volume; beyond it,
// requests still count but drop their exact row.
const DefaultRowCap = 1 << 20

// Volume is one tenant's striped slice of the tier. It implements
// workload.Target on the fleet's host engine, so the same generators that
// measure a single drive produce multi-tenant fleet traffic.
type Volume struct {
	f      *Fleet
	name   string
	group  []int
	size   int64
	shared []int // distinct drives of group, for flush fan-out

	// extent e of the volume lives at drive extDrive[e], local byte extBase[e].
	extDrive []int32
	extBase  []int64

	requests    int64
	subRequests int64
	lat         *stats.LatencyRecorder
	rows        []volRow
	rowCap      int
	droppedRows int64
}

// AddVolume carves a tenant volume of the given byte size, striped in extent
// (stripe-size) units across the drive group in order. Capacity is allocated
// from each drive's cursor; an error is returned when the group cannot hold
// the volume. Volumes must all be added before traffic starts: sharing is
// derived from the final tenant count per drive.
func (f *Fleet) AddVolume(name string, group []int, bytes int64) (*Volume, error) {
	if len(group) == 0 {
		return nil, fmt.Errorf("fleet: volume %s: empty drive group", name)
	}
	extents := bytes / f.stripe
	if extents <= 0 {
		return nil, fmt.Errorf("fleet: volume %s: size %d below one %d-byte extent", name, bytes, f.stripe)
	}
	v := &Volume{
		f:        f,
		name:     name,
		group:    append([]int(nil), group...),
		size:     extents * f.stripe,
		extDrive: make([]int32, extents),
		extBase:  make([]int64, extents),
		lat:      stats.NewLatencyRecorder(),
		rowCap:   DefaultRowCap,
	}
	// Validate the whole allocation before committing any cursor movement,
	// so a failed AddVolume leaves the tier exactly as it found it.
	need := make(map[int]int64)
	for e := int64(0); e < extents; e++ {
		di := group[int(e)%len(group)]
		if di < 0 || di >= len(f.drives) {
			return nil, fmt.Errorf("fleet: volume %s: drive index %d out of range", name, di)
		}
		need[di] += f.stripe
	}
	for di, n := range need {
		d := f.drives[di]
		if d.cursor+n > d.dev.Size() {
			return nil, fmt.Errorf("fleet: volume %s: drive %d cannot hold %d more bytes (%d of %d used)",
				name, di, n, d.cursor, d.dev.Size())
		}
	}
	touched := map[int]bool{}
	for e := int64(0); e < extents; e++ {
		di := group[int(e)%len(group)]
		d := f.drives[di]
		v.extDrive[e] = int32(di)
		v.extBase[e] = d.cursor
		d.cursor += f.stripe
		touched[di] = true
	}
	for di := range touched {
		f.drives[di].tenants++
		v.shared = append(v.shared, di)
	}
	// Deterministic flush fan-out order.
	for i := 1; i < len(v.shared); i++ {
		for j := i; j > 0 && v.shared[j] < v.shared[j-1]; j-- {
			v.shared[j], v.shared[j-1] = v.shared[j-1], v.shared[j]
		}
	}
	f.vols = append(f.vols, v)
	return v, nil
}

// Name returns the tenant label.
func (v *Volume) Name() string { return v.name }

// Engine returns the fleet's host engine (workload.Target).
func (v *Volume) Engine() *sim.Engine { return v.f.eng }

// Size returns the volume's capacity in bytes (workload.Target).
func (v *Volume) Size() int64 { return v.size }

// SectorSize returns the tier's common sector size (workload.Target).
func (v *Volume) SectorSize() int { return v.f.sector }

// frag is one drive-local piece of a volume request.
type frag struct {
	di  int32
	off int64
	n   int64
}

// split cuts [off, off+length) at extent boundaries into drive-local pieces.
func (v *Volume) split(off, length int64) []frag {
	frags := make([]frag, 0, 1+length/v.f.stripe)
	for length > 0 {
		e := off / v.f.stripe
		within := off % v.f.stripe
		n := v.f.stripe - within
		if n > length {
			n = length
		}
		frags = append(frags, frag{di: v.extDrive[e], off: v.extBase[e] + within, n: n})
		off += n
		length -= n
	}
	return frags
}

// checkIO validates a request against the volume's bounds and alignment.
func (v *Volume) checkIO(off, n int64) error {
	if off < 0 || n <= 0 || off+n > v.size {
		return fmt.Errorf("fleet %s: access [%d,+%d) beyond size %d", v.name, off, n, v.size)
	}
	if s := int64(v.f.sector); off%s != 0 || n%s != 0 {
		return fmt.Errorf("fleet %s: unaligned access off=%d len=%d", v.name, off, n)
	}
	return nil
}

// opKind selects the drive entry point in submit.
type opKind int

const (
	opWrite opKind = iota
	opRead
	opTrim
)

func (k opKind) String() string {
	switch k {
	case opWrite:
		return "write"
	case opRead:
		return "read"
	default:
		return "trim"
	}
}

// submit splits a request across its drives, issues every piece, and wires a
// joint completion that consumes each sub-request's attribution row and
// records the tenant's blast-radius accounting.
func (v *Volume) submit(kind opKind, off, length int64, done func()) error {
	if err := v.checkIO(off, length); err != nil {
		return err
	}
	var sp obs.Span
	if v.f.tr.Enabled() {
		sp = v.f.tr.Begin("fleet."+kind.String(),
			obs.Str("tenant", v.name), obs.Int("off", off), obs.Int("len", length))
	}
	frags := v.split(off, length)
	start := v.f.eng.Now()
	remaining := len(frags)
	var gc, gcShared sim.Time
	for _, fr := range frags {
		d := v.f.drives[fr.di]
		shared := d.tenants > 1
		v.f.syncDrive(d)
		v.subRequests++
		subDone := func() {
			if v.f.prefetching {
				panic("fleet: completion inside a prefetch window (drive violated its completion floor)")
			}
			if row, ok := d.takeRow(); ok {
				g := row.Phases[obs.PhaseGCStall]
				gc += g
				if shared {
					gcShared += g
				}
			}
			remaining--
			if remaining == 0 {
				v.record(v.f.eng.Now()-start, gc, gcShared)
				sp.End()
				if done != nil {
					done()
				}
			}
		}
		var err error
		switch kind {
		case opWrite:
			err = d.dev.WriteAsync(fr.off, nil, fr.n, subDone)
		case opRead:
			err = d.dev.ReadAsync(fr.off, nil, fr.n, subDone)
		case opTrim:
			err = d.dev.TrimAsync(fr.off, fr.n, subDone)
		}
		if err != nil {
			// The volume range was validated above; a drive rejecting a
			// mapped piece means the extent map is corrupt.
			panic(fmt.Sprintf("fleet %s: drive %d rejected mapped I/O: %v", v.name, fr.di, err))
		}
	}
	v.f.armPump()
	return nil
}

// record accumulates one completed tenant request.
func (v *Volume) record(total, gc, gcShared sim.Time) {
	v.requests++
	if len(v.rows) >= v.rowCap {
		v.droppedRows++
		return
	}
	v.rows = append(v.rows, volRow{total: total, gc: gc, gcShared: gcShared})
	v.lat.Record(total)
}

// WriteAsync submits a striped write (workload.Target).
func (v *Volume) WriteAsync(off int64, data []byte, length int64, done func()) error {
	if data != nil {
		length = int64(len(data))
	}
	return v.submit(opWrite, off, length, done)
}

// ReadAsync submits a striped read (workload.Target).
func (v *Volume) ReadAsync(off int64, buf []byte, length int64, done func()) error {
	if buf != nil {
		length = int64(len(buf))
	}
	return v.submit(opRead, off, length, done)
}

// TrimAsync discards a striped range (workload.Target).
func (v *Volume) TrimAsync(off, length int64, done func()) error {
	return v.submit(opTrim, off, length, done)
}

// FlushAsync flushes every drive backing the volume; done fires once all have
// settled (workload.Target). Flushes are not recorded as tenant requests —
// the blast-radius metric is defined over read/write latency.
func (v *Volume) FlushAsync(done func()) error {
	remaining := len(v.shared)
	for _, di := range v.shared {
		d := v.f.drives[di]
		v.f.syncDrive(d)
		err := d.dev.FlushAsync(func() {
			if v.f.prefetching {
				panic("fleet: flush completion inside a prefetch window (drive violated its completion floor)")
			}
			d.takeRow() // consume; flush rows don't charge a request
			remaining--
			if remaining == 0 && done != nil {
				done()
			}
		})
		if err != nil {
			return fmt.Errorf("fleet %s: drive %d: %w", v.name, di, err)
		}
	}
	v.f.armPump()
	return nil
}

// TenantReport is one tenant's latency and interference summary.
type TenantReport struct {
	Tenant       string
	Drives       int // drives backing the volume
	SharedDrives int // of those, drives also backing other tenants
	Requests     int64
	P50          sim.Time
	P95          sim.Time
	P99          sim.Time
	P999         sim.Time
	// TailThreshold is the latency bound defining the p99 tail below.
	TailThreshold sim.Time
	// TailGCSharePPM is gc_stall's share of the p99 tail's summed latency
	// (parts per million), over all of the tenant's drives.
	TailGCSharePPM int64
	// BlastPPM is the GC blast radius: the share of the p99 tail's summed
	// latency charged to gc_stall on drives shared with other tenants —
	// interference the tenant cannot see, caused by neighbors it cannot name.
	BlastPPM int64
}

// Report summarizes the volume's completed requests.
func (v *Volume) Report() TenantReport {
	r := TenantReport{Tenant: v.name, Drives: len(v.shared), Requests: v.requests}
	for _, di := range v.shared {
		if v.f.drives[di].tenants > 1 {
			r.SharedDrives++
		}
	}
	if v.lat.Count() == 0 {
		return r
	}
	r.P50 = v.lat.Percentile(50)
	r.P95 = v.lat.Percentile(95)
	r.P99 = v.lat.Percentile(99)
	r.P999 = v.lat.Percentile(99.9)
	r.TailThreshold = r.P99
	var sum, gc, gcShared sim.Time
	for i := range v.rows {
		if v.rows[i].total < r.TailThreshold {
			continue
		}
		sum += v.rows[i].total
		gc += v.rows[i].gc
		gcShared += v.rows[i].gcShared
	}
	if sum > 0 {
		r.TailGCSharePPM = int64(gc) * 1_000_000 / int64(sum)
		r.BlastPPM = int64(gcShared) * 1_000_000 / int64(sum)
	}
	return r
}

// MemReport is fleet-wide resident-memory accounting for copy-on-write drive
// images (DESIGN.md §12): how many bytes the tier actually holds versus what
// the drives would occupy fully copied. Shared chunks are deduplicated by
// identity across drives, so ImageBytes counts each sealed image chunk once
// no matter how many clones reference it.
type MemReport struct {
	Drives          int   `json:"drives"`
	ResidentBytes   int64 `json:"resident_bytes"` // ImageBytes + PrivateBytes
	ImageBytes      int64 `json:"image_bytes"`    // unique shared image chunk bytes
	ImageChunks     int64 `json:"image_chunks"`   // unique shared image chunks
	SharedRefs      int64 `json:"shared_refs"`    // shared-chunk references summed over drives
	PrivateBytes    int64 `json:"private_bytes"`  // exclusively owned chunk bytes summed over drives
	CowCopies       int64 `json:"cow_copies"`     // chunks privately copied on first write
	UntouchedDrives int   `json:"untouched_drives"`
	UntouchedCow    int64 `json:"untouched_cow_copies"` // cow copies on drives backing no volume
}

// MemReport walks every drive's COW accounting. Deterministic given the same
// simulation state; call it from the simulation thread (experiments publish
// it into metrics; live endpoints read an atomically published copy).
func (f *Fleet) MemReport() MemReport {
	r := MemReport{Drives: len(f.drives)}
	seen := make(map[any]struct{})
	for _, d := range f.drives {
		st := d.dev.MemStats()
		r.PrivateBytes += st.OwnedBytes
		r.SharedRefs += st.SharedChunks
		r.CowCopies += st.CowCopies
		if d.tenants == 0 {
			r.UntouchedDrives++
			r.UntouchedCow += st.CowCopies
		}
		d.dev.VisitSharedChunks(func(id any, bytes int64) {
			if _, ok := seen[id]; ok {
				return
			}
			seen[id] = struct{}{}
			r.ImageChunks++
			r.ImageBytes += bytes
		})
	}
	r.ResidentBytes = r.ImageBytes + r.PrivateBytes
	return r
}

// String renders the one-line fleet memory summary printed under experiment
// tables and by ssdfio -fleet.
func (r MemReport) String() string {
	mib := func(b int64) float64 { return float64(b) / (1 << 20) }
	return fmt.Sprintf(
		"fleet memory: %d drives resident in %.1f MiB = %.1f MiB shared image (%d chunks) + %.1f MiB private dirty; %d COW chunk copies (%d on %d untouched drives)",
		r.Drives, mib(r.ResidentBytes), mib(r.ImageBytes), r.ImageChunks,
		mib(r.PrivateBytes), r.CowCopies, r.UntouchedCow, r.UntouchedDrives)
}

// BindObs attaches the fleet to a cell tracer: host-engine events count into
// the tracer's engine metrics, tenant requests open fleet.write/read/trim
// spans (the drives' own spans stay on their private capped tracers — at
// fleet scale the tenant-level stream is the one worth exporting), and, when
// the tracer has a timeline configured, rows are sampled on host-clock
// boundaries from the summed telemetry of every drive.
func (f *Fleet) BindObs(tr *obs.Tracer) {
	f.tr = tr
	tr.BindEngine(f.eng)
	tr.SetTimelineSampler(f.sampleTimeline)
}

// sampleTimeline sums per-drive telemetry into one tier-level sample.
func (f *Fleet) sampleTimeline(s *obs.TimelineSample) {
	for _, d := range f.drives {
		var t obs.TimelineSample
		d.dev.SampleTimeline(&t)
		s.HostBytesWritten += t.HostBytesWritten
		s.HostBytesRead += t.HostBytesRead
		s.PagesProgrammed += t.PagesProgrammed
		s.GCPagesMoved += t.GCPagesMoved
		s.DirtyCacheBytes += t.DirtyCacheBytes
		s.QueueDepth += t.QueueDepth
		s.GCRunning += t.GCRunning
		s.BusBusyNS += t.BusBusyNS
		s.BusWaitNS += t.BusWaitNS
	}
}

// PublishMetrics snapshots tier-level aggregates and per-tenant summaries
// into tr's metric set, and credits every drive engine's fired events to the
// cell so the events-fired metric covers the whole co-simulation. Call once
// at the end of a run.
func (f *Fleet) PublishMetrics(tr *obs.Tracer) {
	m := tr.Metrics()
	if m == nil {
		return
	}
	var agg obs.TimelineSample
	f.sampleTimeline(&agg)
	var driveEvents int64
	for _, d := range f.drives {
		driveEvents += d.dev.Tracer().EventsFired()
	}
	tr.AddEventsFired(driveEvents)
	m.Set("ssdtp_fleet_drives", int64(len(f.drives)))
	m.Set("ssdtp_fleet_shared_drives", int64(f.SharedDrives()))
	m.Set("ssdtp_fleet_tenants", int64(len(f.vols)))
	m.Set("ssdtp_fleet_host_bytes_written_total", agg.HostBytesWritten)
	m.Set("ssdtp_fleet_host_bytes_read_total", agg.HostBytesRead)
	m.Set("ssdtp_fleet_pages_programmed_total", agg.PagesProgrammed)
	m.Set("ssdtp_fleet_gc_pages_moved_total", agg.GCPagesMoved)
	mem := f.MemReport()
	m.Set("ssdtp_image_shared_chunks", mem.ImageChunks)
	m.Set("ssdtp_image_cow_chunks", mem.CowCopies)
	m.Set("ssdtp_image_resident_bytes", mem.ResidentBytes)
	for _, v := range f.vols {
		r := v.Report()
		pre := "ssdtp_fleet_tenant_" + v.name
		m.Set(pre+"_requests_total", r.Requests)
		m.Set(pre+"_sub_requests_total", v.subRequests)
		m.Set(pre+"_dropped_rows_total", v.droppedRows)
		m.Set(pre+"_p50_ns", int64(r.P50))
		m.Set(pre+"_p99_ns", int64(r.P99))
		m.Set(pre+"_p999_ns", int64(r.P999))
		m.Set(pre+"_tail_gc_share_ppm", r.TailGCSharePPM)
		m.Set(pre+"_blast_radius_ppm", r.BlastPPM)
		// The tenant's disclosed log page, summarized: what a transparent
		// device set would let this tenant observe about its own backing
		// drives (DESIGN.md §14).
		p := v.tenantPage()
		m.Set(pre+"_telemetry_active_gc_units", p.ActiveGCUnits)
		m.Set(pre+"_telemetry_free_blocks_min", p.FreeBlocksMin)
		m.Set(pre+"_telemetry_gc_pages_programmed_total", p.GCPagesProgrammed)
	}
}
