package fleet

import (
	"fmt"
	"testing"

	"ssdtp/internal/obs"
	"ssdtp/internal/sim"
	"ssdtp/internal/ssd"
	"ssdtp/internal/workload"
)

// TestFleetMaxScaleSmoke is the tentpole's acceptance run: a 1024-drive tier
// cloned from one prefilled image completes a short multi-tenant run, and its
// resident memory — shared image plus every drive's private dirty chunks —
// stays within the footprint of ~4 fully-copied drives. Before COW images,
// 1024 preconditioned drives meant 1024 deep copies; now the fleet costs one
// image plus what the run actually dirties.
func TestFleetMaxScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-drive tier")
	}
	const drives = 1024

	// One prefilled, drained drive image for the whole homogeneous tier.
	// Full mqsim-base geometry, not the shrunken testConfig: the acceptance
	// bound compares against a real drive image (~1.4 MiB of mapping and
	// chip metadata), the same shape `ssdfio -drives 1024 -prefill` clones.
	// Every drive — touched or not — dirties ~1 KiB when its idle GC
	// performs one background erase (two block-metadata chunk copies), so
	// the shrunken geometry would make that constant per-drive floor look
	// like 4 full drives on its own.
	cfg := ssd.MQSimBase()
	btr := obs.NewTracer("")
	btr.Suspend()
	b := cfg
	b.Trace = btr
	builder := ssd.NewDevice(sim.NewEngine(), b)
	fill := builder.Size() * 85 / 100 / 65536 * 65536
	workload.Run(builder, workload.Spec{
		Name: "prefill", Pattern: workload.Sequential, RequestBytes: 65536, Length: fill,
	}, workload.Options{MaxRequests: fill / 65536})
	done := false
	if err := builder.FlushAsync(func() { done = true }); err != nil {
		t.Fatal(err)
	}
	builder.Engine().RunWhile(func() bool { return !done })
	img := builder.Snapshot()
	fullDrive := builder.MemStats()
	fullBytes := fullDrive.OwnedBytes + fullDrive.SharedBytes

	host := sim.NewEngine()
	devs := make([]*ssd.Device, drives)
	for i := range devs {
		c := cfg
		dtr := obs.NewTracer(fmt.Sprintf("drive%04d", i))
		dtr.SetRecordCap(1)
		c.Trace = dtr
		dev := ssd.NewDevice(sim.NewEngine(), c)
		dev.Restore(img)
		devs[i] = dev
	}
	f := New(host, devs, 256*1024)
	f.SetParallel(4)

	// A handful of tenants on narrow groups: most of the tier stays
	// untouched, which is exactly the fleet shape COW images exist for.
	const tenants = 8
	pl := ConsistentHash(drives, 8, 42)
	targets := make([]workload.Target, tenants)
	specs := make([]workload.Spec, tenants)
	for tn := 0; tn < tenants; tn++ {
		v, err := f.AddVolume(fmt.Sprintf("t%d", tn), pl.Group(tn), 8<<20)
		if err != nil {
			t.Fatal(err)
		}
		targets[tn] = v
		specs[tn] = workload.Spec{
			Name: v.Name(), Pattern: workload.Uniform, RequestBytes: 4096,
			QueueDepth: 2, Seed: int64(100 + tn),
		}
	}
	workload.RunMulti(targets, specs, workload.Options{MaxRequests: 400})

	rep := f.MemReport()
	t.Logf("full drive = %d bytes; %s", fullBytes, rep)
	if rep.Drives != drives {
		t.Fatalf("MemReport covers %d drives, want %d", rep.Drives, drives)
	}
	// The acceptance bound: the whole tier within ~4 fully-copied drives.
	if budget := 4 * fullBytes; rep.ResidentBytes > budget {
		t.Errorf("1024-drive tier resident in %d bytes; budget 4 full drives = %d", rep.ResidentBytes, budget)
	}
	if rep.UntouchedDrives < drives/2 {
		t.Errorf("only %d untouched drives; the narrow-placement smoke expects most of the tier idle", rep.UntouchedDrives)
	}
}
