package fleet

import (
	"bytes"
	"fmt"
	"testing"

	"ssdtp/internal/obs"
	"ssdtp/internal/sim"
	"ssdtp/internal/ssd"
	"ssdtp/internal/workload"
)

// gcFleetRun builds a 3-drive, 2-tenant fleet near the GC fill level, runs a
// mixed overwrite workload hard enough to force steady-state collection (so
// prefetch windows have real background work to fire), and returns every
// output surface the determinism contract covers: tenant reports, the cell
// tracer's four exports, and its engine metrics.
func gcFleetRun(t *testing.T, workers int) (reports [2]TenantReport, jsonl, timeline, metrics, perfetto []byte, f *Fleet) {
	t.Helper()
	f = testFleet(t, 3, 256*1024)
	f.SetParallel(workers)
	tr := obs.NewTracer("cell")
	tr.SetTimeline(2 * sim.Millisecond)
	f.BindObs(tr)

	perVol := f.drives[0].dev.Size() * 85 / 100 * 3 / 2 // 2 tenants over 3 drives
	perVol = perVol / (256 * 1024) * (256 * 1024)
	var targets []workload.Target
	var specs []workload.Spec
	var vols []*Volume
	for tenant := 0; tenant < 2; tenant++ {
		v, err := f.AddVolume(fmt.Sprintf("t%d", tenant), StripeAll(3).Group(tenant), perVol)
		if err != nil {
			t.Fatal(err)
		}
		vols = append(vols, v)
		targets = append(targets, v)
		specs = append(specs, workload.Spec{
			Name: v.Name(), Pattern: workload.Hotspot, RequestBytes: 64 * 1024,
			QueueDepth: 4, Seed: int64(tenant + 1), ReadFrac: 0.2,
		})
	}
	reqs := 2 * perVol / (64 * 1024)
	workload.RunMulti(targets, specs, workload.Options{MaxRequests: reqs})
	f.PublishMetrics(tr)

	reports = [2]TenantReport{vols[0].Report(), vols[1].Report()}
	var bj, bt, bm, bp bytes.Buffer
	if err := tr.WriteJSONL(&bj); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteTimelineCSV(&bt); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteMetrics(&bm); err != nil {
		t.Fatal(err)
	}
	if err := tr.WritePerfetto(&bp); err != nil {
		t.Fatal(err)
	}
	return reports, bj.Bytes(), bt.Bytes(), bm.Bytes(), bp.Bytes(), f
}

// TestParallelFleetByteIdentical pins the tentpole contract: the parallel
// prefetch engine produces byte-identical output to the serial pump at every
// worker count — tenant reports, trace JSONL, timeline CSV, metrics, and
// Perfetto export.
func TestParallelFleetByteIdentical(t *testing.T) {
	sReports, sJSONL, sTimeline, sMetrics, sPerfetto, sf := gcFleetRun(t, 1)
	if sf.prefetchedBatches != 0 {
		t.Fatalf("serial run opened %d window batches", sf.prefetchedBatches)
	}
	if len(sTimeline) == 0 || len(sMetrics) == 0 {
		t.Fatal("serial run produced empty exports; test covers nothing")
	}
	for _, workers := range []int{2, 8} {
		pReports, pJSONL, pTimeline, pMetrics, pPerfetto, pf := gcFleetRun(t, workers)
		if pf.prefetchedBatches == 0 {
			t.Fatalf("workers=%d: no batches prefetched; parallel path not exercised", workers)
		}
		if pReports != sReports {
			t.Fatalf("workers=%d: tenant reports diverge:\n%+v\nvs serial\n%+v", workers, pReports, sReports)
		}
		if !bytes.Equal(pJSONL, sJSONL) {
			t.Fatalf("workers=%d: trace JSONL diverges from serial", workers)
		}
		if !bytes.Equal(pTimeline, sTimeline) {
			t.Fatalf("workers=%d: timeline CSV diverges from serial", workers)
		}
		if !bytes.Equal(pMetrics, sMetrics) {
			t.Fatalf("workers=%d: metrics diverge from serial", workers)
		}
		if !bytes.Equal(pPerfetto, sPerfetto) {
			t.Fatalf("workers=%d: Perfetto export diverges from serial", workers)
		}
	}
}

// TestParallelAttributionInvariant pins the sim.Resource acquire-wait
// accounting under the sharded engine (ISSUE 7 satellite): for every
// sub-request attribution row a drive emits during a parallel run, the phase
// charges must sum exactly to the end-to-end latency. A shard-boundary grant
// that restored the 5-tuple wrong would break the equality.
func TestParallelAttributionInvariant(t *testing.T) {
	host := sim.NewEngine()
	devs := make([]*ssd.Device, 3)
	for i := range devs {
		cfg := testConfig("test-drive")
		tr := obs.NewTracer(fmt.Sprintf("drive%d", i))
		tr.SetRecordCap(1)
		cfg.Trace = tr
		devs[i] = ssd.NewDevice(sim.NewEngine(), cfg)
	}
	f := New(host, devs, 256*1024)
	f.SetParallel(4)
	// Interpose on each drive's row sink: verify the invariant, then run the
	// fleet's own hand-off so blast-radius accounting still works.
	var rows int64
	for _, d := range f.drives {
		d := d
		d.dev.Tracer().Prof().SetRowSink(func(r obs.AttrRow) {
			rows++
			var sum sim.Time
			for _, p := range r.Phases {
				sum += p
			}
			if sum != r.Total {
				t.Fatalf("attribution row phases sum %d != total %d (%+v)", sum, r.Total, r)
			}
			d.lastRow = r
			d.hasRow = true
		})
	}

	perVol := devs[0].Size() * 85 / 100 * 3 / 2
	perVol = perVol / (256 * 1024) * (256 * 1024)
	var targets []workload.Target
	var specs []workload.Spec
	for tenant := 0; tenant < 2; tenant++ {
		v, err := f.AddVolume(fmt.Sprintf("t%d", tenant), StripeAll(3).Group(tenant), perVol)
		if err != nil {
			t.Fatal(err)
		}
		targets = append(targets, v)
		specs = append(specs, workload.Spec{
			Name: v.Name(), Pattern: workload.Sequential, RequestBytes: 64 * 1024,
			QueueDepth: 8, Seed: int64(tenant + 1),
		})
	}
	reqs := 2 * perVol / (64 * 1024)
	workload.RunMulti(targets, specs, workload.Options{MaxRequests: reqs})
	if f.prefetchedBatches == 0 {
		t.Fatal("no batches prefetched; invariant not tested under the parallel engine")
	}
	if rows == 0 {
		t.Fatal("no attribution rows observed")
	}
}

// TestParallelFlushAndTrim covers the flush fan-out and trim paths under the
// parallel pump (their completions are outstanding-tracked too), against the
// serial run of the identical sequence.
func TestParallelFlushAndTrim(t *testing.T) {
	run := func(workers int) (sim.Time, int64) {
		f := testFleet(t, 2, 256*1024)
		f.SetParallel(workers)
		v, err := f.AddVolume("a", []int{0, 1}, 4*1024*1024)
		if err != nil {
			t.Fatal(err)
		}
		host := f.Engine()
		var done int
		step := func(fn func(cb func()) error) {
			if err := fn(func() { done++ }); err != nil {
				t.Fatal(err)
			}
			host.RunWhile(func() bool { return done == 0 })
			done = 0
		}
		step(func(cb func()) error { return v.WriteAsync(0, nil, 512*1024, cb) })
		step(func(cb func()) error { return v.FlushAsync(cb) })
		step(func(cb func()) error { return v.TrimAsync(0, 256*1024, cb) })
		step(func(cb func()) error { return v.ReadAsync(256*1024, nil, 256*1024, cb) })
		return host.Now(), v.subRequests
	}
	sNow, sSubs := run(1)
	pNow, pSubs := run(4)
	if sNow != pNow || sSubs != pSubs {
		t.Fatalf("parallel flush/trim sequence diverged: now %d vs %d, subs %d vs %d",
			pNow, sNow, pSubs, sSubs)
	}
}
