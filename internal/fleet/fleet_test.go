package fleet

import (
	"fmt"
	"testing"

	"ssdtp/internal/obs"
	"ssdtp/internal/sim"
	"ssdtp/internal/ssd"
	"ssdtp/internal/workload"
)

// testConfig is a deliberately small drive so fleet tests and their GC
// activity run in milliseconds. Shrinking BlocksPerPlane squeezes the
// per-PU over-provisioning slack, so OP is raised to keep it comfortably
// above the GC reserve — without that, a near-full drive has nothing
// reclaimable and wedges.
func testConfig(name string) ssd.Config {
	cfg := ssd.MQSimBase()
	cfg.Name = name
	cfg.Channels = 2
	cfg.Geometry.BlocksPerPlane = 8
	cfg.FTL.OverProvision = 0.25
	return cfg
}

// testFleet builds n fresh traced drives behind a host engine.
func testFleet(t *testing.T, n int, stripe int64) *Fleet {
	t.Helper()
	host := sim.NewEngine()
	devs := make([]*ssd.Device, n)
	for i := range devs {
		cfg := testConfig("test-drive")
		tr := obs.NewTracer(fmt.Sprintf("drive%d", i))
		tr.SetRecordCap(1)
		cfg.Trace = tr
		devs[i] = ssd.NewDevice(sim.NewEngine(), cfg)
	}
	return New(host, devs, stripe)
}

func TestPlacementGroups(t *testing.T) {
	p := StripeAll(8)
	g0, g1 := p.Group(0), p.Group(1)
	if len(g0) != 8 || len(g1) != 8 {
		t.Fatalf("stripe groups = %d, %d drives", len(g0), len(g1))
	}
	if g0[0] != 0 || g1[0] != 1 {
		t.Errorf("rotation: g0[0]=%d g1[0]=%d", g0[0], g1[0])
	}

	ch := ConsistentHash(16, 4, 42)
	for tenant := 0; tenant < 4; tenant++ {
		g := ch.Group(tenant)
		if len(g) != 4 {
			t.Fatalf("tenant %d group size %d", tenant, len(g))
		}
		seen := map[int]bool{}
		for _, d := range g {
			if d < 0 || d >= 16 || seen[d] {
				t.Fatalf("tenant %d group %v invalid", tenant, g)
			}
			seen[d] = true
		}
		// Pure function: same parameters, same group.
		g2 := ConsistentHash(16, 4, 42).Group(tenant)
		for i := range g {
			if g[i] != g2[i] {
				t.Fatalf("tenant %d group not deterministic: %v vs %v", tenant, g, g2)
			}
		}
	}
}

func TestVolumeExtentMapping(t *testing.T) {
	f := testFleet(t, 4, 256*1024)
	v, err := f.AddVolume("a", []int{0, 1, 2, 3}, 4*1024*1024)
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 4*1024*1024 {
		t.Fatalf("size = %d", v.Size())
	}
	// Extent e lives on drive e%4 at local offset (e/4)*stripe.
	frags := v.split(0, 3*256*1024)
	if len(frags) != 3 {
		t.Fatalf("frags = %d", len(frags))
	}
	for i, fr := range frags {
		if int(fr.di) != i || fr.off != 0 || fr.n != 256*1024 {
			t.Errorf("frag %d = %+v", i, fr)
		}
	}
	// Mid-extent request stays on one drive with the right local offset.
	frags = v.split(256*1024+4096, 8192)
	if len(frags) != 1 || frags[0].di != 1 || frags[0].off != 4096 || frags[0].n != 8192 {
		t.Errorf("mid-extent frag = %+v", frags[0])
	}
}

func TestVolumeCapacityAndBounds(t *testing.T) {
	f := testFleet(t, 2, 256*1024)
	if _, err := f.AddVolume("big", []int{0, 1}, 1<<40); err == nil {
		t.Error("oversized volume accepted")
	}
	v, err := f.AddVolume("a", []int{0, 1}, 1024*1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.WriteAsync(v.Size(), nil, 4096, nil); err == nil {
		t.Error("out-of-range write accepted")
	}
	if err := v.WriteAsync(123, nil, 4096, nil); err == nil {
		t.Error("unaligned write accepted")
	}
	if err := v.ReadAsync(-4096, nil, 4096, nil); err == nil {
		t.Error("negative-offset read accepted")
	}
}

// TestSingleDriveFleetTransparent pins the co-simulation contract: a 1-drive
// fleet adds no modeled latency and preserves the drive's event interleaving,
// so a workload through the volume reproduces the exact per-request latencies
// of the same workload directly against an identical drive.
func TestSingleDriveFleetTransparent(t *testing.T) {
	spec := workload.Spec{
		Name: "w", Pattern: workload.Uniform, RequestBytes: 4096,
		QueueDepth: 4, Seed: 7, Length: 4 * 1024 * 1024,
	}
	opt := workload.Options{MaxRequests: 400}

	direct := ssd.NewDevice(sim.NewEngine(), testConfig("test-drive"))
	want := workload.Run(direct, spec, opt)

	f := testFleet(t, 1, 256*1024)
	v, err := f.AddVolume("a", []int{0}, 8*1024*1024)
	if err != nil {
		t.Fatal(err)
	}
	got := workload.RunMulti([]workload.Target{v}, []workload.Spec{spec}, opt)[0]

	if got.Requests != want.Requests {
		t.Fatalf("requests: fleet %d, direct %d", got.Requests, want.Requests)
	}
	gl, wl := got.Latency.Snapshot(), want.Latency.Snapshot()
	for i := range wl {
		if gl[i] != wl[i] {
			t.Fatalf("latency %d: fleet %d != direct %d", i, gl[i], wl[i])
		}
	}
}

func TestMultiTenantFleetRun(t *testing.T) {
	f := testFleet(t, 4, 256*1024)
	pl := StripeAll(4)
	var targets []workload.Target
	var specs []workload.Spec
	var vols []*Volume
	for tenant := 0; tenant < 2; tenant++ {
		v, err := f.AddVolume(fmt.Sprintf("t%d", tenant), pl.Group(tenant), 16*1024*1024)
		if err != nil {
			t.Fatal(err)
		}
		vols = append(vols, v)
		targets = append(targets, v)
		specs = append(specs, workload.Spec{
			Name: v.Name(), Pattern: workload.Uniform, RequestBytes: 16384,
			QueueDepth: 4, Seed: int64(tenant + 1),
		})
	}
	if got := f.SharedDrives(); got != 4 {
		t.Fatalf("shared drives = %d, want 4", got)
	}
	results := workload.RunMulti(targets, specs, workload.Options{MaxRequests: 300})
	for i, res := range results {
		if res.Requests != 300 {
			t.Fatalf("tenant %d requests = %d", i, res.Requests)
		}
		r := vols[i].Report()
		if r.Requests != 300 {
			t.Errorf("tenant %d report requests = %d", i, r.Requests)
		}
		if r.Drives != 4 || r.SharedDrives != 4 {
			t.Errorf("tenant %d drives = %d shared = %d", i, r.Drives, r.SharedDrives)
		}
		if r.P50 <= 0 || r.P99 < r.P50 || r.P999 < r.P99 {
			t.Errorf("tenant %d percentiles out of order: %+v", i, r)
		}
		if r.BlastPPM < 0 || r.BlastPPM > r.TailGCSharePPM || r.TailGCSharePPM > 1_000_000 {
			t.Errorf("tenant %d blast accounting inconsistent: %+v", i, r)
		}
	}
}

// TestFleetRunDeterministic pins within-process reproducibility of the
// co-simulation: two identically-built fleets under identical traffic report
// identical per-tenant summaries.
func TestFleetRunDeterministic(t *testing.T) {
	run := func() [2]TenantReport {
		f := testFleet(t, 3, 256*1024)
		ch := ConsistentHash(3, 2, 9)
		var targets []workload.Target
		var specs []workload.Spec
		var vols []*Volume
		for tenant := 0; tenant < 2; tenant++ {
			v, err := f.AddVolume(fmt.Sprintf("t%d", tenant), ch.Group(tenant), 8*1024*1024)
			if err != nil {
				t.Fatal(err)
			}
			vols = append(vols, v)
			targets = append(targets, v)
			specs = append(specs, workload.Spec{
				Name: v.Name(), Pattern: workload.Hotspot, RequestBytes: 4096,
				QueueDepth: 2, Seed: int64(100 + tenant), ReadFrac: 0.3,
			})
		}
		workload.RunMulti(targets, specs, workload.Options{MaxRequests: 250})
		return [2]TenantReport{vols[0].Report(), vols[1].Report()}
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical fleet runs differ:\n%+v\nvs\n%+v", a, b)
	}
}

// TestFleetGCAttribution drives a small, nearly-full fleet hard enough to
// force garbage collection and checks the interference shows up in the
// blast-radius accounting: gc_stall charged to tenants on shared drives.
func TestFleetGCAttribution(t *testing.T) {
	f := testFleet(t, 2, 256*1024)
	pl := StripeAll(2)
	var targets []workload.Target
	var specs []workload.Spec
	var vols []*Volume
	// Two tenants split 85% of the tier — the fill level preconditioning
	// uses, leaving GC reclaimable space; writing ~2x each volume's span
	// forces steady-state collection on both (shared) drives.
	perVol := f.drives[0].dev.Size() * 85 / 100 // half of each drive, times two drives
	perVol = perVol / (256 * 1024) * (256 * 1024)
	for tenant := 0; tenant < 2; tenant++ {
		v, err := f.AddVolume(fmt.Sprintf("t%d", tenant), pl.Group(tenant), perVol)
		if err != nil {
			t.Fatal(err)
		}
		vols = append(vols, v)
		targets = append(targets, v)
		specs = append(specs, workload.Spec{
			Name: v.Name(), Pattern: workload.Sequential, RequestBytes: 64 * 1024,
			QueueDepth: 8, Seed: int64(tenant + 1),
		})
	}
	reqs := 2 * perVol / (64 * 1024)
	workload.RunMulti(targets, specs, workload.Options{MaxRequests: reqs})
	var gcHit bool
	for _, v := range vols {
		r := v.Report()
		if r.Requests != reqs {
			t.Fatalf("tenant %s requests = %d, want %d", r.Tenant, r.Requests, reqs)
		}
		if r.TailGCSharePPM > 0 {
			gcHit = true
			// Every drive is shared, so all GC interference is blast radius.
			if r.BlastPPM != r.TailGCSharePPM {
				t.Errorf("tenant %s: blast %d ppm != gc share %d ppm on all-shared drives",
					r.Tenant, r.BlastPPM, r.TailGCSharePPM)
			}
		}
	}
	if !gcHit {
		t.Error("no tenant saw gc_stall in its tail after overwriting the tier twice")
	}
}

func TestFleetPublishMetrics(t *testing.T) {
	f := testFleet(t, 2, 256*1024)
	tr := obs.NewTracer("cell")
	f.BindObs(tr)
	v, err := f.AddVolume("a", []int{0, 1}, 2*1024*1024)
	if err != nil {
		t.Fatal(err)
	}
	workload.RunMulti([]workload.Target{v}, []workload.Spec{{
		Name: "a", Pattern: workload.Sequential, RequestBytes: 16384, Seed: 1,
	}}, workload.Options{MaxRequests: 50})
	f.PublishMetrics(tr)
	m := tr.Metrics()
	if m.Get("ssdtp_fleet_drives") != 2 || m.Get("ssdtp_fleet_tenants") != 1 {
		t.Errorf("fleet gauges: drives=%d tenants=%d",
			m.Get("ssdtp_fleet_drives"), m.Get("ssdtp_fleet_tenants"))
	}
	if m.Get("ssdtp_fleet_host_bytes_written_total") != 50*16384 {
		t.Errorf("host bytes = %d", m.Get("ssdtp_fleet_host_bytes_written_total"))
	}
	if m.Get("ssdtp_fleet_tenant_a_requests_total") != 50 {
		t.Errorf("tenant requests = %d", m.Get("ssdtp_fleet_tenant_a_requests_total"))
	}
	if tr.EventsFired() == 0 {
		t.Error("drive engine events not credited to the cell tracer")
	}
}
