package fleet

import "ssdtp/internal/telemetry"

// Fleet-level transparency (DESIGN.md §14): the tier discloses the same log
// page a single drive does, summed across drives, and — the piece no real
// multi-tenant host gets today — a per-tenant join of each tenant's disclosed
// drive-set telemetry with the blast-radius attribution the profiler
// computes. The telemetry columns are what a transparent device would let
// the tenant see; BlastPPM is the ground truth it would explain.

// FillLogPage aggregates every drive's log page into p (Accumulate
// semantics: counters sum, FreeBlocksMin is the scarcest PU tier-wide,
// GCVictimValidPPM the worst in-flight victim).
func (f *Fleet) FillLogPage(p *telemetry.Page) {
	for _, d := range f.drives {
		var q telemetry.Page
		d.dev.FillLogPage(&q)
		p.Accumulate(&q)
	}
}

// AttachTelemetry streams the fleet-level log page into rec on the host
// clock's aligned boundaries. Call after BindObs (the window rides the cell
// tracer's engine hook; the shard pump's lookahead already respects it via
// NextTimelineBoundary). A nil recorder detaches.
func (f *Fleet) AttachTelemetry(rec *telemetry.Recorder) {
	if rec == nil {
		f.tr.SetWindow(0, nil)
		return
	}
	rec.SetSource(f.FillLogPage)
	f.tr.SetWindow(rec.Interval(), rec.Observe)
}

// TenantTelemetry is one tenant's disclosed state joined with its GC
// attribution: the log page aggregated over the drives backing the volume,
// plus the tail shares only the simulator's profiler can measure.
type TenantTelemetry struct {
	Tenant         string
	Page           telemetry.Page
	TailGCSharePPM int64
	BlastPPM       int64
}

// tenantPage aggregates the log pages of the drives backing v.
func (v *Volume) tenantPage() telemetry.Page {
	var p telemetry.Page
	for _, di := range v.shared {
		var q telemetry.Page
		v.f.drives[di].dev.FillLogPage(&q)
		p.Accumulate(&q)
	}
	return p
}

// TenantTelemetry returns the per-tenant telemetry/attribution join, one row
// per volume in creation order. Pure function of current simulation state —
// deterministic at any shard count once the run has drained.
func (f *Fleet) TenantTelemetry() []TenantTelemetry {
	out := make([]TenantTelemetry, 0, len(f.vols))
	for _, v := range f.vols {
		r := v.Report()
		out = append(out, TenantTelemetry{
			Tenant:         v.name,
			Page:           v.tenantPage(),
			TailGCSharePPM: r.TailGCSharePPM,
			BlastPPM:       r.BlastPPM,
		})
	}
	return out
}
