// Multiqueue: why the "MQ" in MQSim matters — a latency-sensitive reader
// sharing a drive with a flooding writer, under three host-interface
// configurations.
package main

import (
	"fmt"
	"math/rand"

	"ssdtp/internal/hostif"
	"ssdtp/internal/sim"
	"ssdtp/internal/ssd"
	"ssdtp/internal/stats"
)

func run(name string, arb hostif.Arbitration, separate bool, weight int) {
	eng := sim.NewEngine()
	dev := ssd.NewDevice(eng, ssd.MQSimBase())
	ctl := hostif.NewController(dev, hostif.Config{Arbitration: arb, MaxOutstanding: 8})
	heavy := ctl.CreateQueue(512, 1)
	light := heavy
	if separate {
		light = ctl.CreateQueue(64, weight)
	}

	// Prime data for the reader.
	done := false
	if err := dev.WriteAsync(0, nil, 1<<20, func() { done = true }); err != nil {
		panic(err)
	}
	eng.RunWhile(func() bool { return !done })

	rng := rand.New(rand.NewSource(1))
	deadline := eng.Now() + 100*sim.Millisecond
	var refill func()
	refill = func() {
		if eng.Now() >= deadline {
			return
		}
		for heavy.Backlog() < 256 {
			if ctl.Submit(heavy, hostif.Request{
				Kind: hostif.OpWrite, Off: rng.Int63n(dev.Size()/16384) * 16384, Len: 16384,
			}) != nil {
				break
			}
		}
		eng.Schedule(sim.Millisecond, refill)
	}
	refill()

	lat := stats.NewLatencyRecorder()
	var tick func()
	tick = func() {
		if eng.Now() >= deadline {
			return
		}
		_ = ctl.Submit(light, hostif.Request{
			Kind: hostif.OpRead, Off: rng.Int63n(256) * 4096, Len: 4096,
			Done: func(l sim.Time) { lat.Record(l) },
		})
		eng.Schedule(500*sim.Microsecond, tick)
	}
	tick()
	eng.Run()

	fmt.Printf("%-36s reader p50=%6dµs  p99=%6dµs\n", name,
		lat.Percentile(50)/sim.Microsecond, lat.Percentile(99)/sim.Microsecond)
}

func main() {
	fmt.Println("a paced 4KB reader vs a flooding 16KB writer on one MQSim-base drive:")
	run("single shared queue", hostif.RoundRobin, false, 1)
	run("per-tenant queues, round-robin", hostif.RoundRobin, true, 1)
	run("per-tenant queues, WRR 4:1 reads", hostif.Weighted, true, 4)
	fmt.Println("\nhead-of-line blocking in the host interface dwarfs the flash itself —")
	fmt.Println("the layer MQSim exists to model (cmd/reproduce -run tabS6 for the table).")
}
