// Quickstart: build a simulated Crucial MX500, do some I/O, and look at the
// device the way a host can — completion latencies and S.M.A.R.T. counters.
package main

import (
	"fmt"

	"ssdtp/internal/sim"
	"ssdtp/internal/ssd"
)

func main() {
	// Every simulation hangs off one discrete-event engine.
	eng := sim.NewEngine()
	dev := ssd.NewDevice(eng, ssd.MX500())
	fmt.Printf("device: %s, %d MB logical, %d B sectors\n",
		dev.Name(), dev.Size()>>20, dev.SectorSize())

	// Write 1 MB sequentially, asynchronously; the callback fires in
	// simulated time.
	var writeDone sim.Time
	for off := int64(0); off < 1<<20; off += 65536 {
		if err := dev.WriteAsync(off, nil, 65536, func() { writeDone = eng.Now() }); err != nil {
			panic(err)
		}
	}
	dev.FlushAsync(nil)
	eng.Run()
	fmt.Printf("1 MB written and flushed by t=%.2f ms\n",
		float64(writeDone)/float64(sim.Millisecond))

	// Read it back and measure one request's latency.
	start := eng.Now()
	var lat sim.Time
	if err := dev.ReadAsync(0, nil, 65536, func() { lat = eng.Now() - start }); err != nil {
		panic(err)
	}
	eng.Run()
	fmt.Printf("64 KB read latency: %d µs\n", lat/sim.Microsecond)

	// The host-visible counter surface (what §2.2 works from):
	fmt.Println("\nS.M.A.R.T.:")
	fmt.Print(dev.SMART().String())

	// And the ground truth a black box cannot see:
	c := dev.FTL().Counters()
	fmt.Printf("\nground truth: %d data pages, %d parity pages, %d map pages programmed\n",
		c.DataPagesProgrammed, c.ParityPagesProgrammed, c.MapPagesProgrammed)
}
