// JTAG-RE: the §3.2 end-to-end story — drive the 840 EVO's debug port over
// bit-banged GPIO, de-obfuscate its update file, and recover the FTL's
// internals, validating every finding against the planted ground truth.
package main

import (
	"fmt"

	"ssdtp/internal/experiments"
)

func main() {
	res := experiments.Fig6JTAG(experiments.Quick, 1)
	fmt.Print(res.Table())
	if res.AllOK() {
		fmt.Println("\nall findings match the planted ground truth — the debug port alone")
		fmt.Println("was enough to recover what the paper's §3.2 reports.")
	} else {
		fmt.Println("\nsome findings did NOT match — see above.")
	}
}
