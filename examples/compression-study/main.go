// Compression-study: how much does an undocumented intra-SSD compression
// scheme move device lifetime? (Figure 2's question, as a library user.)
package main

import (
	"fmt"

	"ssdtp/internal/compress"
	"ssdtp/internal/oltp"
)

func main() {
	for _, level := range []struct {
		name  string
		ratio float64
	}{{"highly compressible", 0.22}, {"barely compressible", 0.85}} {
		fmt.Printf("%s OLTP pages (ratio %.2f):\n", level.name, level.ratio)
		base := 0.0
		for _, name := range compress.SchemeNames {
			s, err := compress.New(name, 16384)
			if err != nil {
				panic(err)
			}
			eng := oltp.NewEngine(oltp.Config{TablePages: 16384, PageRatio: level.ratio, Seed: 5})
			eng.Prime(s)
			res := eng.Run(s, 20000)
			w := res.WritesPerTxn()
			if name == "re-bp32" {
				base = w
			}
			fmt.Printf("  %-8s %.4f flash pages/txn\n", name, w)
		}
		for _, name := range compress.SchemeNames {
			_ = name
		}
		fmt.Printf("  (spread vs re-bp32 baseline %.4f shown by cmd/reproduce -run fig2)\n\n", base)
	}
	fmt.Println("same host workload, same drive interface — yet flash wear varies by")
	fmt.Println("multiples depending on a firmware feature no datasheet documents.")
}
