// Aging-study: reproduce one cell of Figure 1 interactively — age an
// update-in-place and a log-structured file system on the same SSD model
// and compare fileserver throughput.
package main

import (
	"fmt"

	"ssdtp/internal/fsim"
	"ssdtp/internal/sim"
	"ssdtp/internal/ssd"
)

func run(model func() ssd.Config, kind string, prof fsim.AgingProfile) fsim.FileserverResult {
	dev := ssd.NewDevice(sim.NewEngine(), model())
	disk := fsim.SSDDisk{Dev: dev}
	var fs fsim.FS
	if kind == "extfs" {
		fs = fsim.NewExtFS(disk)
	} else {
		fs = fsim.NewLogFS(disk)
	}
	st := fsim.Age(fs, prof, 7)
	res := fsim.Fileserver(fs, dev.Engine(), 600, 70)
	if e, ok := fs.(*fsim.ExtFS); ok {
		fmt.Printf("  %s aged %s: %d aging ops, util %.0f%%, frag %.2f extents/file\n",
			kind, prof, st.Ops, st.Utilization*100, e.FragmentationScore())
	} else {
		fmt.Printf("  %s aged %s: %d aging ops, util %.0f%%\n", kind, prof, st.Ops, st.Utilization*100)
	}
	return res
}

func main() {
	for _, prof := range []fsim.AgingProfile{fsim.AgeU, fsim.AgeA} {
		fmt.Printf("S64, aging profile %s:\n", prof)
		ext := run(ssd.S64, "extfs", prof)
		log := run(ssd.S64, "logfs", prof)
		fmt.Printf("  fileserver: extfs %.0f ops/s, logfs %.0f ops/s -> ratio %.2fx\n\n",
			ext.OpsPerSecond(), log.OpsPerSecond(), log.OpsPerSecond()/ext.OpsPerSecond())
	}
	fmt.Println("run cmd/reproduce -run fig1 for the full device x aging matrix;")
	fmt.Println("the ratio's variability across cells is Figure 1's argument.")
}
