// Probe-decode: solder simulated probes onto a drive's flash channels and
// recover its characteristics from electrical signals alone (§3.1).
package main

import (
	"fmt"

	"ssdtp/internal/core"
	"ssdtp/internal/sim"
	"ssdtp/internal/ssd"
)

func main() {
	for _, mk := range []func() ssd.Config{ssd.Vertex2, ssd.EVO840} {
		cfg := mk()
		dev := ssd.NewDevice(sim.NewEngine(), cfg)
		f := core.CharacterizeByProbe(dev)
		fmt.Printf("%s (probes on all %d channels, %d decoded ops):\n",
			cfg.Name, dev.Array().Channels(), f.Ops)
		fmt.Printf("  page size       %6d B   (truth: %d)\n", f.PageBytes, cfg.Geometry.PageSize)
		fmt.Printf("  tPROG           %6d µs  (truth: %d)\n",
			f.TProg/sim.Microsecond, cfg.Timing.ProgramPage/sim.Microsecond)
		fmt.Printf("  tBERS           %6d µs  (truth: %d)\n",
			f.TErase/sim.Microsecond, cfg.Timing.EraseBlock/sim.Microsecond)
		if f.SLCTProg > 0 {
			fmt.Printf("  pSLC tPROG      %6d µs  (bimodal busy times reveal TurboWrite)\n",
				f.SLCTProg/sim.Microsecond)
		}
		fmt.Printf("  active channels %6d\n", f.ActiveChannels)
		fmt.Printf("  out-of-place writes: %v (log-structured FTL)\n", f.OutOfPlace)
		fmt.Printf("  background ops while idle: %d\n\n", f.BackgroundOps)
	}
	// The allocation scheme — one of the §2.1 design axes — read off the
	// wire by fanning a page batch across the channels.
	dev := ssd.NewDevice(sim.NewEngine(), ssd.MQSimBase())
	fmt.Printf("allocation inference on a fresh %s: %v\n\n", dev.Name(), core.InferStriping(dev, 0))

	fmt.Println("nothing above used firmware cooperation: ONFI standardization makes")
	fmt.Println("the controller's behaviour legible from the package pinout.")
}
