// Blackbox-WAF: the §2.2 exercise as a library user would run it — infer
// the MX500's NAND-page counter unit from sequential writes, then watch the
// IOPS-weighted WAF model fail on a mixed workload.
package main

import (
	"fmt"

	"ssdtp/internal/core"
	"ssdtp/internal/sim"
	"ssdtp/internal/ssd"
	"ssdtp/internal/workload"
)

func main() {
	dev := ssd.NewDevice(sim.NewEngine(), ssd.MX500())

	fmt.Println("step 1: how much host data per 'NAND page' counter tick?")
	points := core.MeasurePageUnit(dev, []int{4096, 65536, 1048576}, 4<<20)
	for _, p := range points {
		fmt.Printf("  %7d B writes -> %6.1f KB/page\n", p.RequestBytes, p.BytesPerPage()/1024)
	}
	fmt.Println("  (converges at ~30 KB: a 32 KB dual-plane unit carrying 15/16 data under RAIN)")

	fmt.Println("\nstep 2: per-workload WAF, measured separately (assuming 16 KB pages):")
	dev2 := ssd.NewDevice(sim.NewEngine(), ssd.MX500())
	section := dev2.Size() / 3 / 65536 * 65536
	specs := []workload.Spec{
		{Name: "4K-uniform", Pattern: workload.Uniform, RequestBytes: 4096, Offset: 0, Length: section, Seed: 1, QueueDepth: 2},
		{Name: "4K-80/20", Pattern: workload.Hotspot, RequestBytes: 4096, Offset: section, Length: section, Seed: 2, QueueDepth: 2},
		{Name: "16K-uniform", Pattern: workload.Uniform, RequestBytes: 16384, Offset: 2 * section, Length: section, Seed: 3, QueueDepth: 2},
	}
	var parts []core.WAFMeasurement
	for _, s := range specs {
		m := core.MeasureWAF(dev2, s, 250*sim.Millisecond)
		parts = append(parts, m)
		fmt.Printf("  %-12s WAF %.3f at %6.0f IOPS\n", m.Name, m.WAF(16384), m.IOPS)
	}
	pred := core.PredictMixedWAF(parts, 16384)
	mixed := core.MeasureWAFConcurrent(dev2, specs, 250*sim.Millisecond)
	fmt.Printf("\nIOPS-weighted prediction for the mix: %.3f\n", pred)
	fmt.Printf("measured mixed WAF:                   %.3f (%.1fx the prediction)\n",
		mixed.Combined.WAF(16384), mixed.Combined.WAF(16384)/pred)
	fmt.Println("the additive black-box model misses GC onset and cache contention —")
	fmt.Println("exactly the paper's point about extrapolating from external measurements.")
}
